/**
 * @file
 * Observability layer (obs/metrics.hh, obs/contention.hh): epoch
 * boundary exactness, ring-wrap accounting, top-K eviction
 * determinism, blame-edge resolution - and the three system-level
 * gates: metrics off by default with armed runs bit-identical to off
 * runs (observability is free), PDES jobs=1 vs jobs=N merging to the
 * same series and table, and SweepRunner concurrency leaving every
 * armed simulation bit-identical to its serial twin.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "core/sweep.hh"
#include "core/system.hh"
#include "obs/contention.hh"
#include "obs/metrics.hh"
#include "workload/synthetic_app.hh"

namespace tcc {
namespace {

// --- epoch sampler unit tests ---------------------------------------

/** Sampler with one Delta and one Gauge probe over local counters. */
struct Probed {
    std::uint64_t counter = 0;
    std::uint64_t gauge = 0;
    MetricsSampler m;

    Probed(Tick epoch_len, std::size_t cap)
        : m(epoch_len, cap, nullptr)
    {
        m.addProbe("delta", MetricsSampler::Kind::Delta,
                   MetricsSampler::Merge::Sum,
                   [this]() { return counter; });
        m.addProbe("gauge", MetricsSampler::Kind::Gauge,
                   MetricsSampler::Merge::Max,
                   [this]() { return gauge; });
    }

    /** Simulate one event at @p tick, mirroring the run loop: the
     *  sampler sees the tick *before* the event's effects. */
    void
    event(Tick tick, std::uint64_t add)
    {
        m.advanceTo(tick);
        counter += add;
        gauge = counter;
    }
};

TEST(MetricsSampler, EpochBoundaryExactness)
{
    // Epoch k must hold exactly the events with tick in
    // [k*10, (k+1)*10) - an event at tick 10 lands in epoch 1, never
    // epoch 0, because advanceTo(10) closes epoch 0 first.
    Probed p(10, 64);
    p.event(0, 1);   // epoch 0
    p.event(9, 2);   // epoch 0 (last interior tick)
    p.event(10, 4);  // epoch 1 (exactly on the boundary)
    p.event(19, 8);  // epoch 1
    p.event(20, 16); // epoch 2
    p.m.finish(25);

    ASSERT_EQ(p.m.closed(), 3u);
    EXPECT_EQ(p.m.dropped(), 0u);
    EXPECT_EQ(p.m.firstEpoch(), 0u);
    const int d = p.m.probeIndex("delta");
    const int g = p.m.probeIndex("gauge");
    ASSERT_GE(d, 0);
    ASSERT_GE(g, 0);
    EXPECT_EQ(p.m.at(0, d), 3u);  // 1 + 2
    EXPECT_EQ(p.m.at(1, d), 12u); // 4 + 8
    EXPECT_EQ(p.m.at(2, d), 16u);
    // Gauge snapshots the value at each boundary.
    EXPECT_EQ(p.m.at(0, g), 3u);
    EXPECT_EQ(p.m.at(1, g), 15u);
    EXPECT_EQ(p.m.at(2, g), 31u);
}

TEST(MetricsSampler, QuietEpochsCloseEmpty)
{
    // A long gap closes every intervening epoch with a zero delta;
    // gauges carry the standing value forward.
    Probed p(10, 64);
    p.event(5, 7);
    p.event(47, 1); // closes epochs 0..3 on the way
    p.m.finish(47);

    ASSERT_EQ(p.m.closed(), 5u);
    const int d = p.m.probeIndex("delta");
    const int g = p.m.probeIndex("gauge");
    EXPECT_EQ(p.m.at(0, d), 7u);
    for (std::size_t r = 1; r <= 3; ++r) {
        EXPECT_EQ(p.m.at(r, d), 0u) << "epoch " << r;
        EXPECT_EQ(p.m.at(r, g), 7u) << "epoch " << r;
    }
    EXPECT_EQ(p.m.at(4, d), 1u);
    EXPECT_EQ(p.m.at(4, g), 8u);
}

TEST(MetricsSampler, RingWrapKeepsNewestRows)
{
    Probed p(10, 3); // capacity 3 epochs
    for (Tick t = 0; t < 70; t += 10)
        p.event(t, 1); // one event per epoch, epochs 0..6
    p.m.finish(69);

    EXPECT_EQ(p.m.closed(), 7u);
    EXPECT_EQ(p.m.rows(), 3u);
    EXPECT_EQ(p.m.dropped(), 4u);
    EXPECT_EQ(p.m.firstEpoch(), 4u);
    const int d = p.m.probeIndex("delta");
    const int g = p.m.probeIndex("gauge");
    // Kept rows are the newest three, oldest first.
    for (std::size_t r = 0; r < 3; ++r) {
        EXPECT_EQ(p.m.at(r, d), 1u);
        EXPECT_EQ(p.m.at(r, g), 5u + r); // gauge after epoch 4+r
    }
}

TEST(MetricsSampler, EmptyQueuePeekIsNoOp)
{
    // The run loop passes kTickMax when the queue drains; that must
    // not close the tail (finish() owns the final partial epoch).
    Probed p(10, 8);
    p.event(3, 5);
    p.m.advanceTo(kTickMax);
    EXPECT_EQ(p.m.closed(), 0u);
    p.m.finish(3);
    ASSERT_EQ(p.m.closed(), 1u);
    EXPECT_EQ(p.m.at(0, p.m.probeIndex("delta")), 5u);
}

TEST(MetricsSampler, AdoptMergedFoldsPerProbeOp)
{
    // Two "domains" with identical schema and epoch counts; Sum, Min,
    // and Max probes fold element-wise.
    auto mk = [](std::uint64_t *v) {
        auto m = std::make_unique<MetricsSampler>(10, 8, nullptr);
        m->addProbe("sum", MetricsSampler::Kind::Delta,
                    MetricsSampler::Merge::Sum, [v]() { return v[0]; });
        m->addProbe("min", MetricsSampler::Kind::Gauge,
                    MetricsSampler::Merge::Min, [v]() { return v[1]; });
        m->addProbe("max", MetricsSampler::Kind::Gauge,
                    MetricsSampler::Merge::Max, [v]() { return v[2]; });
        return m;
    };
    std::uint64_t va[3] = {0, 0, 0};
    std::uint64_t vb[3] = {0, 0, 0};
    auto a = mk(va);
    auto b = mk(vb);
    va[0] = 3, va[1] = 7, va[2] = 2;
    vb[0] = 5, vb[1] = 4, vb[2] = 9;
    a->advanceTo(10);
    b->advanceTo(10);
    va[0] = 10, va[1] = 1, va[2] = 8;
    vb[0] = 6, vb[1] = 2, vb[2] = 3;
    a->finish(15);
    b->finish(15);
    ASSERT_EQ(a->closed(), b->closed());

    MetricsSampler merged(10, 8, nullptr);
    std::uint64_t zero[1] = {0};
    merged.addProbe("sum", MetricsSampler::Kind::Delta,
                    MetricsSampler::Merge::Sum, [&]() { return zero[0]; });
    merged.addProbe("min", MetricsSampler::Kind::Gauge,
                    MetricsSampler::Merge::Min, [&]() { return zero[0]; });
    merged.addProbe("max", MetricsSampler::Kind::Gauge,
                    MetricsSampler::Merge::Max, [&]() { return zero[0]; });
    merged.adoptMerged({a.get(), b.get()});

    ASSERT_EQ(merged.closed(), 2u);
    EXPECT_EQ(merged.at(0, 0), 8u);  // 3 + 5
    EXPECT_EQ(merged.at(0, 1), 4u);  // min(7, 4)
    EXPECT_EQ(merged.at(0, 2), 9u);  // max(2, 9)
    EXPECT_EQ(merged.at(1, 0), 8u);  // (10-3) + (6-5)
    EXPECT_EQ(merged.at(1, 1), 1u);  // min(1, 2)
    EXPECT_EQ(merged.at(1, 2), 8u);  // max(8, 3)
}

// --- contention profiler unit tests ---------------------------------

TEST(ContentionProfiler, TopKEvictionIsDeterministic)
{
    // K = 2. Fill with two addresses, then admit a third: the
    // minimum-weight entry goes; on a weight tie the larger address is
    // evicted (lower addresses win).
    ContentionProfiler prof(2, nullptr);
    // addr 0x100: weight 3. addr 0x200: weight 1.
    for (int i = 0; i < 3; ++i)
        prof.recordConflict(0, 1, 0x100, true, false, false, 0);
    prof.recordConflict(0, 1, 0x200, true, false, false, 0);
    // Newcomer 0x300 evicts 0x200 (min weight).
    prof.recordConflict(0, 1, 0x300, false, true, false, 0);
    EXPECT_EQ(prof.evictions(), 1u);

    auto hot = prof.hotWords();
    ASSERT_EQ(hot.size(), 2u);
    EXPECT_EQ(hot[0].addr, 0x100u);
    EXPECT_EQ(hot[0].s.srConflicts, 3u);
    EXPECT_EQ(hot[1].addr, 0x300u);
    EXPECT_EQ(hot[1].s.smConflicts, 1u);

    // Tie case: bump 0x300 to weight 3 so both entries tie; the
    // newcomer then evicts the LARGER address (0x300, not 0x100).
    prof.recordConflict(0, 1, 0x300, true, true, false, 0); // w=3
    prof.recordConflict(0, 1, 0x400, true, false, false, 0);
    EXPECT_EQ(prof.evictions(), 2u);
    hot = prof.hotWords();
    ASSERT_EQ(hot.size(), 2u);
    // 0x100 survived the tie; 0x300 was evicted; 0x400 admitted fresh.
    EXPECT_EQ(hot[0].addr, 0x100u);
    EXPECT_EQ(hot[1].addr, 0x400u);
    EXPECT_EQ(prof.conflictsRecorded(), 7u);
}

TEST(ContentionProfiler, BlameEdgesResolveThroughOwnerMap)
{
    ContentionProfiler prof(8, nullptr);
    prof.recordTidOwner(100, 3); // proc 3 owns TID 100
    prof.recordTidOwner(101, 5);
    // Two aborts of victim 1 by TID 100, one of victim 2 by TID 101,
    // one by a TID never granted (unresolvable).
    prof.recordConflict(1, 100, 0x40, true, false, true, 500);
    prof.recordConflict(1, 100, 0x40, true, false, true, 700);
    prof.recordConflict(2, 101, 0x80, true, false, true, 90);
    prof.recordConflict(2, 999, 0x80, true, false, true, 10);
    // Non-aborting overlap contributes no edge.
    prof.recordConflict(4, 100, 0x40, false, true, false, 0);

    auto edges = prof.blameEdges();
    ASSERT_EQ(edges.size(), 3u);
    EXPECT_EQ(edges[0].killer, 3u);
    EXPECT_EQ(edges[0].victim, 1u);
    EXPECT_EQ(edges[0].count, 2u);
    EXPECT_EQ(edges[1].killer, 5u);
    EXPECT_EQ(edges[1].victim, 2u);
    EXPECT_EQ(edges[1].count, 1u);
    EXPECT_EQ(edges[2].killer, kInvalidNode);
    EXPECT_EQ(edges[2].count, 1u);

    auto hot = prof.hotWords();
    ASSERT_EQ(hot.size(), 2u);
    EXPECT_EQ(hot[0].addr, 0x40u);
    EXPECT_EQ(hot[0].s.aborts, 2u);
    EXPECT_EQ(hot[0].s.wasted, 1200u);
}

TEST(ContentionProfiler, MergeIsOrderDeterministic)
{
    // Build the same conflict stream split two ways across a pair of
    // profilers; merging in the same (domain-id) order must produce
    // identical tables even though intra-domain arrival order differed.
    auto feed = [](ContentionProfiler &p, int salt, bool reversed) {
        for (int k = 0; k < 6; ++k) {
            const int i = reversed ? 5 - k : k;
            const Addr a = 0x1000 + 0x10 * ((i + salt) % 3);
            p.recordConflict(static_cast<NodeId>(i % 4), 50 + i % 2, a,
                             true, i % 2 == 0, i % 3 == 0,
                             100 * static_cast<std::uint64_t>(i));
        }
    };
    ContentionProfiler a0(4, nullptr), a1(4, nullptr);
    ContentionProfiler b0(4, nullptr), b1(4, nullptr);
    feed(a0, 0, false);
    feed(a1, 1, false);
    feed(b0, 0, true);
    feed(b1, 1, true);
    a0.recordTidOwner(50, 0);
    b0.recordTidOwner(50, 0);
    a1.recordTidOwner(51, 1);
    b1.recordTidOwner(51, 1);

    ContentionProfiler ma(4, nullptr), mb(4, nullptr);
    ma.mergeFrom(a0);
    ma.mergeFrom(a1);
    mb.mergeFrom(b0);
    mb.mergeFrom(b1);

    const auto ha = ma.hotWords();
    const auto hb = mb.hotWords();
    ASSERT_EQ(ha.size(), hb.size());
    for (std::size_t i = 0; i < ha.size(); ++i) {
        EXPECT_EQ(ha[i].addr, hb[i].addr);
        EXPECT_EQ(ha[i].s.srConflicts, hb[i].s.srConflicts);
        EXPECT_EQ(ha[i].s.smConflicts, hb[i].s.smConflicts);
        EXPECT_EQ(ha[i].s.aborts, hb[i].s.aborts);
        EXPECT_EQ(ha[i].s.wasted, hb[i].s.wasted);
    }
    const auto ea = ma.blameEdges();
    const auto eb = mb.blameEdges();
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].killer, eb[i].killer);
        EXPECT_EQ(ea[i].victim, eb[i].victim);
        EXPECT_EQ(ea[i].count, eb[i].count);
    }
    EXPECT_EQ(ma.conflictsRecorded(), mb.conflictsRecorded());
    EXPECT_EQ(ma.evictions(), mb.evictions());
}

// --- system-level gates ---------------------------------------------

/** The simulation fingerprint plus a full snapshot of both
 *  observability layers, extracted before the System dies. */
struct ObsSnapshot {
    // Simulation fingerprint (must be invariant under arming).
    std::uint64_t cycles = 0;
    std::uint64_t events = 0;
    std::uint64_t commits = 0;
    std::uint64_t violations = 0;
    std::uint64_t instructions = 0;
    std::uint64_t usefulCycles = 0;
    std::uint64_t violationCycles = 0;
    bool completed = false;
    bool checksOk = false;

    // Metrics series.
    bool hasMetrics = false;
    std::uint64_t epochsClosed = 0;
    std::uint64_t firstEpoch = 0;
    std::vector<std::string> probeNames;
    std::vector<std::uint64_t> seriesRows;

    // Contention table.
    bool hasContention = false;
    std::uint64_t conflicts = 0;
    std::uint64_t evictions = 0;
    std::vector<std::tuple<Addr, std::uint64_t, std::uint64_t,
                           std::uint64_t, std::uint64_t>>
        hotWords;
    std::vector<std::tuple<NodeId, NodeId, std::uint64_t>> blameEdges;

    bool operator==(const ObsSnapshot &) const = default;

    bool
    sameSimulation(const ObsSnapshot &o) const
    {
        return cycles == o.cycles && events == o.events &&
               commits == o.commits && violations == o.violations &&
               instructions == o.instructions &&
               usefulCycles == o.usefulCycles &&
               violationCycles == o.violationCycles &&
               completed == o.completed && checksOk == o.checksOk;
    }
};

ObsSnapshot
snapshot(System &sys, const RunResult &res)
{
    ObsSnapshot s;
    s.cycles = res.cycles;
    s.events = res.events;
    s.commits = res.committedTxns;
    s.violations = res.violations;
    s.instructions = res.committedInstructions;
    s.completed = res.completed;
    s.checksOk = res.checksPassed();
    s.usefulCycles = res.breakdown.useful;
    s.violationCycles = res.breakdown.violation;
    if (const MetricsSampler *m = sys.metricsSampler()) {
        s.hasMetrics = true;
        s.epochsClosed = m->closed();
        s.firstEpoch = m->firstEpoch();
        for (std::size_t p = 0; p < m->probeCount(); ++p)
            s.probeNames.emplace_back(m->probeName(p));
        s.seriesRows.reserve(m->rows() * m->probeCount());
        for (std::size_t r = 0; r < m->rows(); ++r)
            for (std::size_t p = 0; p < m->probeCount(); ++p)
                s.seriesRows.push_back(m->at(r, p));
    }
    if (const ContentionProfiler *c = sys.contentionProfiler()) {
        s.hasContention = true;
        s.conflicts = c->conflictsRecorded();
        s.evictions = c->evictions();
        for (const auto &h : c->hotWords())
            s.hotWords.emplace_back(h.addr, h.s.srConflicts,
                                    h.s.smConflicts, h.s.aborts,
                                    h.s.wasted);
        for (const auto &e : c->blameEdges())
            s.blameEdges.emplace_back(e.killer, e.victim, e.count);
    }
    return s;
}

ObsSnapshot
runApp(const std::string &app, std::uint32_t procs, Tick epoch,
       std::size_t top_k, std::uint32_t domains = 0,
       std::uint32_t jobs = 1, std::uint64_t seed = 42)
{
    SystemConfig cfg;
    cfg.numProcs = procs;
    cfg.homePolicy = HomePolicy::Interleave;
    cfg.check.serial = true;
    cfg.check.invariants = true;
    cfg.trace.metricsEpoch = epoch;
    cfg.trace.contentionTopK = top_k;
    cfg.pdes.domains = domains;
    cfg.pdes.jobs = jobs;
    System sys(cfg);
    auto sources = setupApp(sys, appProfile(app), seed);
    const RunResult res = sys.run(2'000'000'000ull);
    return snapshot(sys, res);
}

TEST(ObsSystem, OffByDefaultAndFree)
{
    // Default config: both layers off, accessors null.
    const ObsSnapshot off = runApp("radix", 8, 0, 0);
    ASSERT_TRUE(off.completed);
    ASSERT_TRUE(off.checksOk);
    EXPECT_FALSE(off.hasMetrics);
    EXPECT_FALSE(off.hasContention);

    // Arming both layers changes nothing about the simulation.
    const ObsSnapshot armed = runApp("radix", 8, 500, 16);
    EXPECT_TRUE(armed.hasMetrics);
    EXPECT_TRUE(armed.hasContention);
    EXPECT_TRUE(off.sameSimulation(armed))
        << "observability must be free: armed fingerprint diverged";
    EXPECT_GT(armed.epochsClosed, 0u);
    EXPECT_EQ(armed.probeNames.size(), 10u);

    // And the armed run itself is reproducible.
    const ObsSnapshot again = runApp("radix", 8, 500, 16);
    EXPECT_TRUE(armed == again);
}

TEST(ObsSystem, SerialEpochSeriesSumsToTotals)
{
    // With a ring big enough to keep every epoch, the Delta columns
    // must sum to the end-of-run aggregates - boundary exactness at
    // system scale (no event double-counted or lost at epoch edges).
    SystemConfig cfg;
    cfg.numProcs = 8;
    cfg.homePolicy = HomePolicy::Interleave;
    cfg.trace.metricsEpoch = 300;
    cfg.trace.metricsCapacity = 1 << 20;
    cfg.trace.contentionTopK = 8;
    System sys(cfg);
    auto sources = setupApp(sys, appProfile("radix"), 42);
    const RunResult res = sys.run(2'000'000'000ull);
    ASSERT_TRUE(res.completed);

    const MetricsSampler *m = sys.metricsSampler();
    ASSERT_NE(m, nullptr);
    ASSERT_EQ(m->dropped(), 0u);
    auto colSum = [&](const char *name) {
        const int p = m->probeIndex(name);
        EXPECT_GE(p, 0) << name;
        std::uint64_t sum = 0;
        for (std::size_t r = 0; r < m->rows(); ++r)
            sum += m->at(r, static_cast<std::size_t>(p));
        return sum;
    };
    EXPECT_EQ(colSum("commits"), res.committedTxns);
    EXPECT_EQ(colSum("violations"), res.violations);
    EXPECT_EQ(colSum("net_messages"), sys.network().stats().messages);
    EXPECT_EQ(colSum("net_bytes"), sys.network().stats().totalBytes);
    // The final gauge row observes the end-of-run NSTID frontier.
    const int nstid = m->probeIndex("nstid_min");
    ASSERT_GE(nstid, 0);
    std::uint64_t min_nstid = ~std::uint64_t{0};
    for (const auto &d : res.dirs)
        min_nstid = std::min(min_nstid, std::uint64_t{d.nstid});
    EXPECT_EQ(m->at(m->rows() - 1, static_cast<std::size_t>(nstid)),
              min_nstid);
}

TEST(ObsSystem, PdesMergeIdenticalAcrossJobs)
{
    // Both layers armed under PDES: the merged series and table are a
    // pure function of the simulation, never of the thread count.
    const ObsSnapshot j1 = runApp("barnes", 16, 400, 16, 4, 1);
    ASSERT_TRUE(j1.completed);
    ASSERT_TRUE(j1.checksOk);
    ASSERT_TRUE(j1.hasMetrics);
    ASSERT_TRUE(j1.hasContention);
    EXPECT_GT(j1.epochsClosed, 0u);
    for (std::uint32_t jobs : {2u, 4u}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        const ObsSnapshot jn = runApp("barnes", 16, 400, 16, 4, jobs);
        EXPECT_TRUE(j1 == jn)
            << "jobs=" << jobs
            << " merged observability diverged from jobs=1";
    }
}

TEST(ObsSystem, PdesArmedMatchesOffFingerprint)
{
    // Observability is free under PDES too.
    const ObsSnapshot off = runApp("barnes", 16, 0, 0, 4, 4);
    const ObsSnapshot armed = runApp("barnes", 16, 400, 16, 4, 4);
    ASSERT_TRUE(off.completed);
    EXPECT_TRUE(off.sameSimulation(armed));
}

TEST(ObsSweep, ConcurrentArmedRunsStayIdentical)
{
    // A batch of armed simulations through the pool must be
    // bit-identical to the same batch run serially: each System owns
    // its sampler and profiler, so workers share no sampling state.
    struct Cfg {
        std::string app;
        std::uint32_t procs;
        Tick epoch;
        std::uint64_t seed;
    };
    std::vector<Cfg> cfgs;
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        cfgs.push_back({"radix", 4, 200, seed});
        cfgs.push_back({"radix", 8, 500, seed});
        cfgs.push_back({"barnes", 8, 350, seed});
    }
    auto one = [&](std::size_t i) {
        const Cfg &c = cfgs[i];
        return runApp(c.app, c.procs, c.epoch, 16, 0, 1, c.seed);
    };

    SweepRunner serial(1);
    const auto s = sweepIndex<ObsSnapshot>(serial, cfgs.size(), one);
    SweepRunner pool(4);
    const auto p = sweepIndex<ObsSnapshot>(pool, cfgs.size(), one);

    ASSERT_EQ(s.size(), p.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        SCOPED_TRACE("config " + std::to_string(i));
        EXPECT_TRUE(s[i].completed);
        EXPECT_TRUE(s[i].hasMetrics);
        EXPECT_TRUE(s[i] == p[i])
            << "pooled armed run diverged from serial";
    }
}

} // namespace
} // namespace tcc
