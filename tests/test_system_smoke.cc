/**
 * @file
 * End-to-end smoke tests: small systems running scripted transactions
 * through the full protocol stack, checking functional results,
 * quiescence, and serializability.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "workload/scripted_source.hh"

namespace tcc {
namespace {

SystemConfig
smallConfig(std::uint32_t procs, bool checker = true)
{
    SystemConfig cfg;
    cfg.numProcs = procs;
    cfg.check.serial = checker;
    // The online invariant checker is passive; arm it everywhere for
    // free protocol coverage.
    cfg.check.invariants = true;
    return cfg;
}

TEST(SystemSmoke, SingleProcSingleTxnCommits)
{
    System sys(smallConfig(1));
    ScriptedSource src;
    src.add({TxOp::compute(100), TxOp::store(0x1000, 42)});
    sys.setSource(0, &src);

    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(src.committed(), 1u);
    EXPECT_EQ(sys.memory().read(0x1000), 42u);
    EXPECT_TRUE(sys.protocolQuiesced());
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
    EXPECT_EQ(sys.proc(0).stats().txnsCommitted, 1u);
}

TEST(SystemSmoke, ReadAfterWriteAcrossTransactions)
{
    System sys(smallConfig(1));
    ScriptedSource src;
    src.add({TxOp::store(0x1000, 5)});
    src.add({TxOp::load(0x1000), TxOp::storeAdd(0x2000, 10)});
    sys.setSource(0, &src);
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(sys.memory().read(0x2000), 15u); // 5 + 10
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
}

TEST(SystemSmoke, TwoProcsDisjointDataBothCommit)
{
    System sys(smallConfig(2));
    ScriptedSource a, b;
    a.add({TxOp::compute(50), TxOp::store(0x10000, 1)});
    b.add({TxOp::compute(50), TxOp::store(0x20000, 2)});
    sys.setSource(0, &a);
    sys.setSource(1, &b);
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(sys.memory().read(0x10000), 1u);
    EXPECT_EQ(sys.memory().read(0x20000), 2u);
    EXPECT_TRUE(sys.protocolQuiesced());
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
}

TEST(SystemSmoke, ConflictingIncrementsAreSerialized)
{
    // Both processors increment the same word many times. Without
    // conflict detection the final value would be < 2*N.
    constexpr int kIters = 20;
    System sys(smallConfig(2));
    sys.initializeWord(0x1000, 0);
    ScriptedSource a, b;
    for (int i = 0; i < kIters; ++i) {
        a.add({TxOp::load(0x1000), TxOp::storeAdd(0x1000, 1)});
        b.add({TxOp::load(0x1000), TxOp::storeAdd(0x1000, 1)});
    }
    sys.setSource(0, &a);
    sys.setSource(1, &b);
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(sys.memory().read(0x1000),
              static_cast<std::uint64_t>(2 * kIters));
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
    EXPECT_TRUE(sys.protocolQuiesced());
}

TEST(SystemSmoke, BarrierSynchronizesPhases)
{
    System sys(smallConfig(2));
    ScriptedSource a, b;
    // Phase 1: proc 0 writes; phase 2 (after barrier): proc 1 reads.
    a.add({TxOp::store(0x1000, 7)});
    a.add({TxOp::compute(1)}, /*barrier_before=*/true);
    b.add({TxOp::compute(1)});
    b.add({TxOp::load(0x1000), TxOp::storeAdd(0x3000, 0)},
          /*barrier_before=*/true);
    sys.setSource(0, &a);
    sys.setSource(1, &b);
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(sys.memory().read(0x3000), 7u);
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
}

TEST(SystemSmoke, ManyProcsManyTxnsQuiesce)
{
    System sys(smallConfig(8));
    std::vector<ScriptedSource> srcs(8);
    for (NodeId p = 0; p < 8; ++p) {
        for (int t = 0; t < 10; ++t) {
            srcs[p].add({TxOp::compute(20),
                         TxOp::store(0x100000 * (p + 1) + t * 4,
                                     p * 100 + t)});
        }
        sys.setSource(p, &srcs[p]);
    }
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    for (NodeId p = 0; p < 8; ++p)
        EXPECT_EQ(srcs[p].committed(), 10u);
    EXPECT_TRUE(sys.protocolQuiesced());
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
    // Every TID was issued and retired by every directory.
    EXPECT_EQ(sys.vendor().issued(), 80u);
}

TEST(SystemSmoke, UsefulCyclesDominateUncontendedRun)
{
    System sys(smallConfig(1));
    ScriptedSource src;
    for (int i = 0; i < 5; ++i)
        src.add({TxOp::compute(10000), TxOp::store(0x1000 + 4 * i, i)});
    sys.setSource(0, &src);
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    const Breakdown &bd = res.breakdown;
    EXPECT_GT(bd.fraction(bd.useful), 0.9);
    EXPECT_EQ(bd.violation, 0u);
}

TEST(SystemSmoke, IdealNetworkAlsoWorks)
{
    auto cfg = smallConfig(4);
    cfg.network.model = NetworkConfig::Model::Ideal;
    System sys(cfg);
    std::vector<ScriptedSource> srcs(4);
    for (NodeId p = 0; p < 4; ++p) {
        srcs[p].add({TxOp::load(0x1000),
                     TxOp::storeAdd(0x1000, 1)});
        sys.setSource(p, &srcs[p]);
    }
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(sys.memory().read(0x1000), 4u);
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
}

TEST(SystemSmoke, ReadOnlyTransactionsCommit)
{
    System sys(smallConfig(2));
    sys.initializeWord(0x1000, 99);
    ScriptedSource a, b;
    a.add({TxOp::load(0x1000), TxOp::compute(10)});
    b.add({TxOp::load(0x1000), TxOp::compute(10)});
    sys.setSource(0, &a);
    sys.setSource(1, &b);
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(a.committed() + b.committed(), 2u);
    EXPECT_TRUE(sys.protocolQuiesced());
}

} // namespace
} // namespace tcc
