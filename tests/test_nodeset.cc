/**
 * @file
 * Unit tests for NodeSet (directory sharers lists, sharing/writing
 * vectors).
 */

#include <bitset>
#include <cstdint>

#include <gtest/gtest.h>

#include "common/arena.hh"
#include "common/nodeset.hh"

namespace tcc {
namespace {

TEST(NodeSet, StartsEmpty)
{
    NodeSet s(64);
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
    for (NodeId n = 0; n < 64; ++n)
        EXPECT_FALSE(s.test(n));
}

TEST(NodeSet, SetClearTest)
{
    NodeSet s(32);
    s.set(5);
    s.set(31);
    EXPECT_TRUE(s.test(5));
    EXPECT_TRUE(s.test(31));
    EXPECT_FALSE(s.test(6));
    EXPECT_EQ(s.count(), 2u);
    s.clear(5);
    EXPECT_FALSE(s.test(5));
    EXPECT_EQ(s.count(), 1u);
}

TEST(NodeSet, WorksAcrossWordBoundary)
{
    NodeSet s(130);
    s.set(63);
    s.set(64);
    s.set(129);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_EQ(s.toVector(), (std::vector<NodeId>{63, 64, 129}));
}

TEST(NodeSet, ForEachInOrder)
{
    NodeSet s(16);
    s.set(14);
    s.set(2);
    s.set(7);
    std::vector<NodeId> seen;
    s.forEach([&](NodeId n) { seen.push_back(n); });
    EXPECT_EQ(seen, (std::vector<NodeId>{2, 7, 14}));
}

TEST(NodeSet, ClearAll)
{
    NodeSet s(16);
    for (NodeId n = 0; n < 16; ++n)
        s.set(n);
    EXPECT_EQ(s.count(), 16u);
    s.clearAll();
    EXPECT_TRUE(s.empty());
}

TEST(NodeSet, SetIsIdempotent)
{
    NodeSet s(8);
    s.set(3);
    s.set(3);
    EXPECT_EQ(s.count(), 1u);
}

TEST(NodeSet, Equality)
{
    NodeSet a(8), b(8);
    a.set(1);
    b.set(1);
    EXPECT_TRUE(a == b);
    b.set(2);
    EXPECT_FALSE(a == b);
}

// ---------------------------------------------------------------------
// Size-generic storage: property tests against a std::bitset model at
// the inline/wide boundary (255/256/257) and at the 1024-node scaling
// size. A tiny deterministic LCG drives a mixed op sequence; after
// every op the NodeSet must agree with the model on membership,
// population, emptiness, remote-sharer and intersection queries, and
// in-order iteration.
// ---------------------------------------------------------------------

constexpr std::size_t kModelBits = 1024;

std::uint64_t
lcg(std::uint64_t &s)
{
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s >> 33;
}

void
expectMatchesModel(const NodeSet &s,
                   const std::bitset<kModelBits> &model,
                   std::uint32_t nodes)
{
    ASSERT_EQ(s.count(), model.count());
    ASSERT_EQ(s.empty(), model.none());
    std::vector<NodeId> expect;
    for (std::uint32_t n = 0; n < nodes; ++n) {
        ASSERT_EQ(s.test(n), model.test(n)) << "node " << n;
        if (model.test(n))
            expect.push_back(n);
    }
    ASSERT_EQ(s.toVector(), expect);
}

void
propertyTestAt(std::uint32_t nodes, Arena *arena)
{
    NodeSet s(nodes, arena);
    std::bitset<kModelBits> model;
    std::uint64_t rng = 0x5eed0000 + nodes;

    for (int step = 0; step < 2000; ++step) {
        const NodeId n = static_cast<NodeId>(lcg(rng) % nodes);
        switch (lcg(rng) % 8) {
          case 0:
          case 1:
          case 2:
            s.set(n);
            model.set(n);
            break;
          case 3:
            s.clear(n);
            model.reset(n);
            break;
          case 4: {
            // anyBesides == "any member other than n".
            std::bitset<kModelBits> rest = model;
            rest.reset(n);
            ASSERT_EQ(s.anyBesides(n), rest.any());
            break;
          }
          case 5: {
            // intersects against a singleton probe set.
            NodeSet probe(nodes, arena);
            probe.set(n);
            ASSERT_EQ(s.intersects(probe), model.test(n));
            ASSERT_EQ(probe.intersects(s), model.test(n));
            break;
          }
          case 6: {
            // merge from a small random set.
            NodeSet other(nodes, arena);
            std::bitset<kModelBits> otherModel;
            for (int i = 0; i < 5; ++i) {
                const NodeId m =
                    static_cast<NodeId>(lcg(rng) % nodes);
                other.set(m);
                otherModel.set(m);
            }
            ASSERT_EQ(s.intersects(other),
                      (model & otherModel).any());
            s.merge(other);
            model |= otherModel;
            break;
          }
          case 7:
            if (lcg(rng) % 64 == 0) {
                s.clearAll();
                model.reset();
            }
            break;
        }
        if (step % 257 == 0)
            expectMatchesModel(s, model, nodes);
    }
    expectMatchesModel(s, model, nodes);
}

TEST(NodeSetWide, PropertyAtBoundarySizes)
{
    // 255/256 exercise the last inline configurations, 257 the first
    // wide one, 1024 the scaling-sweep size.
    for (std::uint32_t nodes : {255u, 256u, 257u, 1024u})
        propertyTestAt(nodes, nullptr);
}

TEST(NodeSetWide, PropertyArenaBacked)
{
    Arena arena;
    for (std::uint32_t nodes : {257u, 1024u})
        propertyTestAt(nodes, &arena);
}

TEST(NodeSetWide, WordBoundaryMembership)
{
    NodeSet s(1024);
    for (NodeId n : {0u, 63u, 64u, 255u, 256u, 257u, 511u, 512u,
                     1023u}) {
        s.set(n);
        EXPECT_TRUE(s.test(n));
    }
    EXPECT_EQ(s.count(), 9u);
    EXPECT_EQ(s.toVector(),
              (std::vector<NodeId>{0, 63, 64, 255, 256, 257, 511, 512,
                                   1023}));
    EXPECT_TRUE(s.anyBesides(0));
    s.clear(1023);
    EXPECT_FALSE(s.test(1023));
    EXPECT_EQ(s.count(), 8u);
}

TEST(NodeSetWide, CopyAndAssignKeepContents)
{
    Arena arena;
    NodeSet a(1024, &arena);
    a.set(3);
    a.set(700);
    NodeSet b = a;
    EXPECT_TRUE(b == a);
    // Re-assignment mirrors Directory::entry() refreshing a sharers
    // set: the assigned-to set adopts the source's storage.
    NodeSet c(1024);
    c = NodeSet(1024, &arena);
    c.merge(a);
    EXPECT_EQ(c.count(), 2u);
    EXPECT_TRUE(c.test(700));
}

TEST(NodeSetWide, MergeFromSmallerCapacity)
{
    NodeSet wide(1024);
    NodeSet narrow(64);
    narrow.set(5);
    narrow.set(63);
    wide.merge(narrow);
    EXPECT_TRUE(wide.test(5));
    EXPECT_TRUE(wide.test(63));
    EXPECT_EQ(wide.count(), 2u);
    // And the reverse only consults the overlapping words.
    NodeSet narrow2(64);
    narrow2.merge(wide);
    EXPECT_EQ(narrow2.count(), 2u);
}

} // namespace
} // namespace tcc
