/**
 * @file
 * Unit tests for NodeSet (directory sharers lists, sharing/writing
 * vectors).
 */

#include <gtest/gtest.h>

#include "common/nodeset.hh"

namespace tcc {
namespace {

TEST(NodeSet, StartsEmpty)
{
    NodeSet s(64);
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
    for (NodeId n = 0; n < 64; ++n)
        EXPECT_FALSE(s.test(n));
}

TEST(NodeSet, SetClearTest)
{
    NodeSet s(32);
    s.set(5);
    s.set(31);
    EXPECT_TRUE(s.test(5));
    EXPECT_TRUE(s.test(31));
    EXPECT_FALSE(s.test(6));
    EXPECT_EQ(s.count(), 2u);
    s.clear(5);
    EXPECT_FALSE(s.test(5));
    EXPECT_EQ(s.count(), 1u);
}

TEST(NodeSet, WorksAcrossWordBoundary)
{
    NodeSet s(130);
    s.set(63);
    s.set(64);
    s.set(129);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_EQ(s.toVector(), (std::vector<NodeId>{63, 64, 129}));
}

TEST(NodeSet, ForEachInOrder)
{
    NodeSet s(16);
    s.set(14);
    s.set(2);
    s.set(7);
    std::vector<NodeId> seen;
    s.forEach([&](NodeId n) { seen.push_back(n); });
    EXPECT_EQ(seen, (std::vector<NodeId>{2, 7, 14}));
}

TEST(NodeSet, ClearAll)
{
    NodeSet s(16);
    for (NodeId n = 0; n < 16; ++n)
        s.set(n);
    EXPECT_EQ(s.count(), 16u);
    s.clearAll();
    EXPECT_TRUE(s.empty());
}

TEST(NodeSet, SetIsIdempotent)
{
    NodeSet s(8);
    s.set(3);
    s.set(3);
    EXPECT_EQ(s.count(), 1u);
}

TEST(NodeSet, Equality)
{
    NodeSet a(8), b(8);
    a.set(1);
    b.set(1);
    EXPECT_TRUE(a == b);
    b.set(2);
    EXPECT_FALSE(a == b);
}

} // namespace
} // namespace tcc
