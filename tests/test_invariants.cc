/**
 * @file
 * Checker-efficacy tests: each TCC_MUTATE protocol mutation must be
 * caught by the online invariant checker with a diagnostic naming the
 * broken invariant and the offending TID/node. A checker that has
 * never caught a bug proves nothing - these tests are the proof.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/invariant_checker.hh"
#include "check/mutate.hh"
#include "core/system.hh"
#include "workload/scripted_source.hh"

namespace tcc {
namespace {

/** Address of @p word on a page homed at @p dir (Interleave policy). */
Addr
homedAt(NodeId dir, std::uint32_t procs, std::uint32_t word = 0)
{
    const Addr page = 0x40000000ull / 4096;
    const Addr aligned = (page / procs) * procs + dir;
    return aligned * 4096 + word * 4;
}

/**
 * A contended multi-directory workload: every processor increments
 * hot counters homed at two directories and fills its own private
 * page, so commits mark several directories and skips fan out to the
 * rest - exercising every protocol path the mutations break.
 */
RunResult
runContended(std::uint32_t aging_threshold = 3)
{
    constexpr std::uint32_t kProcs = 4;
    SystemConfig cfg;
    cfg.numProcs = kProcs;
    cfg.homePolicy = HomePolicy::Interleave;
    cfg.processor.agingThreshold = aging_threshold;
    cfg.check.serial = true;
    cfg.check.invariants = true;
    System sys(cfg);

    std::vector<ScriptedSource> srcs(kProcs);
    for (NodeId p = 0; p < kProcs; ++p) {
        for (int t = 0; t < 10; ++t) {
            srcs[p].add({
                TxOp::load(homedAt(0, kProcs)),
                TxOp::compute(40 + 13 * p),
                TxOp::storeAdd(homedAt(0, kProcs), 1),
                TxOp::storeAdd(homedAt(1, kProcs), 1),
                TxOp::store(homedAt(p, kProcs, 8 + t), p + 1),
            });
        }
        sys.setSource(p, &srcs[p]);
    }
    return sys.run(500'000'000ull);
}

/** Assert the verdict blames @p invariant_name with full context. */
void
expectCaught(const RunResult &res, const char *invariant_name)
{
    ASSERT_FALSE(res.invariants.ok)
        << "mutation ran undetected (" << invariant_name << ")";
    EXPECT_NE(res.invariants.error.find(invariant_name),
              std::string::npos)
        << "diagnostic should name '" << invariant_name
        << "', got: " << res.invariants.error;
    EXPECT_NE(res.invariants.error.find("node "), std::string::npos)
        << "diagnostic should name the node: " << res.invariants.error;
    EXPECT_NE(res.invariants.error.find("tid"), std::string::npos)
        << "diagnostic should name the TID: " << res.invariants.error;
}

TEST(InvariantMutations, CleanRunPassesAndActuallyChecks)
{
    const RunResult res = runContended();
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_GT(res.invariants.checks, 0u);
    EXPECT_TRUE(res.invariants.checked);
}

TEST(InvariantMutations, SkipVectorOverConsumeCaught)
{
    if (!mutate::compiledIn())
        GTEST_SKIP() << "built without TCC_MUTATE";
    mutate::Scoped arm(mutate::Kind::SkipVectorOverConsume);
    expectCaught(runContended(), invariant::kSkipOrService);
}

TEST(InvariantMutations, NstidRewindCaught)
{
    if (!mutate::compiledIn())
        GTEST_SKIP() << "built without TCC_MUTATE";
    mutate::Scoped arm(mutate::Kind::NstidRewind);
    expectCaught(runContended(), invariant::kNstidMonotonic);
}

TEST(InvariantMutations, CommitBeforeMarksCaught)
{
    if (!mutate::compiledIn())
        GTEST_SKIP() << "built without TCC_MUTATE";
    mutate::Scoped arm(mutate::Kind::CommitBeforeMarks);
    expectCaught(runContended(), invariant::kCommitBeforeMarks);
}

TEST(InvariantMutations, DropSkipCaughtAsStall)
{
    if (!mutate::compiledIn())
        GTEST_SKIP() << "built without TCC_MUTATE";
    mutate::Scoped arm(mutate::Kind::DropSkip);
    const RunResult res = runContended();
    // Lost skips wedge every directory waiting on the skipped TID;
    // the run cannot complete and the finalize pass pinpoints the
    // lowest unserved TID.
    EXPECT_FALSE(res.completed);
    expectCaught(res, invariant::kServiceComplete);
}

TEST(InvariantMutations, TidDropOnViolationCaught)
{
    if (!mutate::compiledIn())
        GTEST_SKIP() << "built without TCC_MUTATE";
    mutate::Scoped arm(mutate::Kind::TidDropOnViolation);
    // agingThreshold=1 makes repeat victims hold their TID while
    // still executing - the window in which an unannounced violation
    // must retain the TID, and the mutation drops it.
    expectCaught(runContended(/*aging_threshold=*/1),
                 invariant::kTidRetained);
}

TEST(InvariantMutations, HaltsAtFirstFailure)
{
    if (!mutate::compiledIn())
        GTEST_SKIP() << "built without TCC_MUTATE";
    mutate::Scoped arm(mutate::Kind::NstidRewind);
    const RunResult res = runContended();
    ASSERT_FALSE(res.invariants.ok);
    // The run halts at the first failure instead of drowning in
    // knock-on errors; the report carries exactly one diagnostic.
    EXPECT_FALSE(res.completed);
    EXPECT_FALSE(res.invariants.error.empty());
}

// --- direct unit tests of the checker itself ------------------------

TEST(InvariantChecker, RetireTwiceRejected)
{
    InvariantChecker chk(2, nullptr);
    EXPECT_TRUE(chk.onRetire(0, 0, InvariantChecker::Retire::Skip));
    EXPECT_FALSE(chk.onRetire(0, 0, InvariantChecker::Retire::Commit));
    EXPECT_TRUE(chk.failed());
    EXPECT_NE(chk.result().error.find(invariant::kSkipOrService),
              std::string::npos);
}

TEST(InvariantChecker, NstidGapDetected)
{
    InvariantChecker chk(2, nullptr);
    EXPECT_TRUE(chk.onRetire(1, 0, InvariantChecker::Retire::Commit));
    chk.onNstidAdvance(1, 0, 3); // TIDs 1 and 2 never retired
    EXPECT_TRUE(chk.failed());
    EXPECT_NE(chk.result().error.find(invariant::kSkipOrService),
              std::string::npos);
}

TEST(InvariantChecker, CommitOrderEnforcedPerDirectory)
{
    InvariantChecker chk(2, nullptr);
    chk.onCommitApply(0, 5, 1, 1, true, false);
    chk.onCommitApply(1, 3, 1, 1, true, false); // other dir: fine
    EXPECT_FALSE(chk.failed());
    chk.onCommitApply(0, 4, 1, 1, true, false); // goes backwards
    EXPECT_TRUE(chk.failed());
    EXPECT_NE(chk.result().error.find(invariant::kCommitTidOrder),
              std::string::npos);
}

TEST(InvariantChecker, PartialBatchMayRepeatTid)
{
    InvariantChecker chk(1, nullptr);
    chk.onCommitApply(0, 7, 1, 1, true, /*partial=*/true);
    chk.onCommitApply(0, 7, 2, 2, true, /*partial=*/true);
    chk.onCommitApply(0, 7, 3, 3, true, /*partial=*/false);
    EXPECT_FALSE(chk.failed()) << chk.result().error;
    chk.onCommitApply(0, 7, 1, 1, true, /*partial=*/true);
    EXPECT_TRUE(chk.failed()) << "partial after full commit of same TID";
}

TEST(InvariantChecker, FinalizeReportsStall)
{
    InvariantChecker chk(1, nullptr);
    chk.onRetire(0, 0, InvariantChecker::Retire::Commit);
    chk.onNstidAdvance(0, 0, 1);
    chk.finalize(/*issued=*/3, /*completed=*/false,
                 /*hit_tick_limit=*/false);
    EXPECT_TRUE(chk.failed());
    EXPECT_NE(chk.result().error.find(invariant::kServiceComplete),
              std::string::npos);
}

TEST(InvariantChecker, FinalizeTolerantOfTickLimit)
{
    InvariantChecker chk(1, nullptr);
    chk.finalize(/*issued=*/3, /*completed=*/false,
                 /*hit_tick_limit=*/true);
    EXPECT_FALSE(chk.failed()) << "max_ticks cut is not a stall";
}

} // namespace
} // namespace tcc
