/**
 * @file
 * System-level protocol scenario tests that mirror the paper's worked
 * examples: the simple commit+violation of Figure 2, the parallel
 * commit success and failure of Figure 3, TID-order serialization of
 * conflicting writes, the write-back/data-forwarding path, violation
 * rules relative to TID order, and the aging (starvation mitigation)
 * mechanism.
 *
 * Addresses are chosen so their home directories are deterministic:
 * with HomePolicy::Interleave and 4 KB pages, homeOf(addr) =
 * (addr / 4096) % numProcs.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "workload/scripted_source.hh"

namespace tcc {
namespace {

SystemConfig
protoConfig(std::uint32_t procs)
{
    SystemConfig cfg;
    cfg.numProcs = procs;
    cfg.check.serial = true;
    cfg.check.invariants = true;
    cfg.homePolicy = HomePolicy::Interleave;
    return cfg;
}

/** Page-sized stride so each address lands on a chosen directory. */
Addr
homedAt(NodeId dir, std::uint32_t procs, std::uint32_t word = 0)
{
    return 0x100000ull * procs * 4096ull / 4096ull // keep well clear
           + static_cast<Addr>(dir) * 4096ull + word * 4;
}

TEST(Protocol, Figure2_CommitAndViolation)
{
    // P1 writes data homed at directory 0 while P2 has speculatively
    // read it; P1's commit violates P2, which re-executes and then
    // observes P1's value.
    System sys(protoConfig(2));
    const Addr x = homedAt(0, 2);

    ScriptedSource p1, p2;
    p1.add({TxOp::compute(50), TxOp::store(x, 77)});
    // P2 reads x early (before P1 commits), burns a long time, then
    // writes its observation to a private location.
    p2.add({TxOp::load(x), TxOp::compute(5000),
            TxOp::storeAdd(homedAt(1, 2), 0)});
    sys.setSource(0, &p1);
    sys.setSource(1, &p2);
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);

    // P2 must have violated once (it read x=0, then P1 committed 77).
    EXPECT_EQ(p2.violated(), 1u);
    EXPECT_EQ(sys.memory().read(homedAt(1, 2)), 77u);
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
    EXPECT_TRUE(sys.protocolQuiesced());
}

TEST(Protocol, Figure3_ParallelCommitDisjointDirectories)
{
    // Two processors commit to different directories concurrently -
    // the scenario of Figure 3 (top): both succeed, neither violates.
    System sys(protoConfig(2));
    ScriptedSource p1, p2;
    p1.add({TxOp::compute(100), TxOp::store(homedAt(0, 2), 1)});
    p2.add({TxOp::compute(100), TxOp::store(homedAt(1, 2), 2)});
    sys.setSource(0, &p1);
    sys.setSource(1, &p2);
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(p1.violated(), 0u);
    EXPECT_EQ(p2.violated(), 0u);
    EXPECT_EQ(sys.memory().read(homedAt(0, 2)), 1u);
    EXPECT_EQ(sys.memory().read(homedAt(1, 2)), 2u);
    EXPECT_TRUE(sys.protocolQuiesced());
}

TEST(Protocol, Figure3_ConflictingCommitAborts)
{
    // Figure 3 (bottom): P2 reads a word P1 commits; the commits
    // serialize on directory 0 and P2 violates, re-executes, and
    // commits the newer value.
    System sys(protoConfig(2));
    const Addr x = homedAt(0, 2);
    ScriptedSource p1, p2;
    p1.add({TxOp::compute(200), TxOp::store(x, 10)});
    p2.add({TxOp::load(x), TxOp::compute(2000),
            TxOp::storeAdd(x, 5)});
    sys.setSource(0, &p1);
    sys.setSource(1, &p2);
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    // Final value must reflect both writes in TID order: P1's 10,
    // then P2's 10+5.
    EXPECT_EQ(sys.memory().read(x), 15u);
    EXPECT_GE(p2.violated(), 1u);
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
}

TEST(Protocol, ConflictingWritesSerializeWithoutReads)
{
    // Blind writes (WAW only) never violate: both transactions commit
    // and the higher TID's value wins.
    System sys(protoConfig(2));
    const Addr x = homedAt(0, 2);
    ScriptedSource p1, p2;
    p1.add({TxOp::compute(100), TxOp::store(x, 111)});
    p2.add({TxOp::compute(100), TxOp::store(x, 222)});
    sys.setSource(0, &p1);
    sys.setSource(1, &p2);
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(p1.violated() + p2.violated(), 0u);
    const auto final = sys.memory().read(x);
    EXPECT_TRUE(final == 111 || final == 222);
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
}

TEST(Protocol, WriteBackDataForwarding)
{
    // P1 commits a line (becoming its owner, data only in its cache);
    // P2's later load must be served through the directory's DataReq /
    // flush path (Figure 2f) and still observe the committed value.
    System sys(protoConfig(2));
    const Addr x = homedAt(0, 2);
    ScriptedSource p1, p2;
    p1.add({TxOp::store(x, 42)});
    p2.add({TxOp::compute(20000)});
    p2.add({TxOp::load(x), TxOp::storeAdd(homedAt(1, 2), 0)});
    sys.setSource(0, &p1);
    sys.setSource(1, &p2);
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(sys.memory().read(homedAt(1, 2)), 42u);
    // The transfer went cache-to-cache: shared traffic is nonzero.
    EXPECT_GT(sys.network().stats()
                  .classBytes[(int)TrafficClass::Shared],
              0u);
}

TEST(Protocol, ReadOnlySharersDoNotViolateEachOther)
{
    System sys(protoConfig(4));
    sys.initializeWord(homedAt(0, 4), 5);
    std::vector<ScriptedSource> srcs(4);
    for (NodeId p = 0; p < 4; ++p) {
        for (int t = 0; t < 5; ++t)
            srcs[p].add({TxOp::load(homedAt(0, 4)),
                         TxOp::compute(100)});
        sys.setSource(p, &srcs[p]);
    }
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    for (auto &s : srcs)
        EXPECT_EQ(s.violated(), 0u);
    EXPECT_TRUE(sys.protocolQuiesced());
}

TEST(Protocol, ManyWritersOneCounterExactTotal)
{
    // The classic atomicity stress: every processor increments one
    // shared counter N times; the final value must be exact.
    constexpr std::uint32_t kProcs = 8;
    constexpr int kIters = 12;
    System sys(protoConfig(kProcs));
    const Addr ctr = homedAt(3, kProcs);
    std::vector<ScriptedSource> srcs(kProcs);
    for (NodeId p = 0; p < kProcs; ++p) {
        for (int i = 0; i < kIters; ++i)
            srcs[p].add({TxOp::load(ctr), TxOp::compute(30),
                         TxOp::storeAdd(ctr, 1)});
        sys.setSource(p, &srcs[p]);
    }
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(sys.memory().read(ctr), kProcs * kIters);
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
    EXPECT_TRUE(sys.protocolQuiesced());
}

TEST(Protocol, AgingGrantsEarlyTidAfterRepeatedViolations)
{
    // One victim transaction keeps getting violated by a stream of
    // short conflicting committers; aging must let it finish.
    SystemConfig cfg = protoConfig(3);
    cfg.processor.agingThreshold = 2;
    System sys(cfg);
    const Addr hot = homedAt(0, 3);

    ScriptedSource victim, a1, a2;
    // Long transaction reading the hot word first.
    victim.add({TxOp::load(hot), TxOp::compute(30000),
                TxOp::storeAdd(hot, 100)});
    for (int i = 0; i < 40; ++i) {
        a1.add({TxOp::load(hot), TxOp::compute(60),
                TxOp::storeAdd(hot, 1)});
        a2.add({TxOp::load(hot), TxOp::compute(60),
                TxOp::storeAdd(hot, 1)});
    }
    sys.setSource(0, &victim);
    sys.setSource(1, &a1);
    sys.setSource(2, &a2);
    const RunResult res = sys.run(500'000'000);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(victim.committed(), 1u);
    // 80 increments of 1, plus one increment of 100 at whatever value
    // the victim finally observed - conservation holds per checker.
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
    // Aging fired: once the victim retains an early TID, it executes
    // under global protection, so it suffers at most a handful of
    // violations (threshold 2 + the race window) instead of being
    // beaten by every one of the ~80 attacker commits.
    EXPECT_LE(victim.violated(), 4u);
}

TEST(Protocol, EvictionWriteBackKeepsDataCorrect)
{
    // A tiny cache forces committed dirty lines out; later reads must
    // still see the committed values (write-back path end to end).
    SystemConfig cfg = protoConfig(2);
    cfg.cache.l1Bytes = 128;
    cfg.cache.l1Assoc = 2;
    cfg.cache.l2Bytes = 512; // 16 lines only
    cfg.cache.l2Assoc = 2;
    System sys(cfg);

    ScriptedSource p0, p1;
    // Write 64 distinct lines (4x the cache), then read them all back.
    std::vector<TxOp> writes, reads;
    for (int i = 0; i < 64; ++i) {
        const Addr a = homedAt(0, 2) + 0x20 * i;
        p0.add({TxOp::store(a, 1000 + i)});
    }
    for (int i = 0; i < 64; ++i) {
        const Addr a = homedAt(0, 2) + 0x20 * i;
        p0.add({TxOp::load(a), TxOp::storeAdd(homedAt(1, 2) + 4 * i,
                                              0)});
    }
    p1.add({TxOp::compute(10)});
    sys.setSource(0, &p0);
    sys.setSource(1, &p1);
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(sys.memory().read(homedAt(1, 2) + 4 * i),
                  1000u + i);
    EXPECT_GT(sys.proc(0).cache().stats().dirtyEvictions, 0u);
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
}

TEST(Protocol, SkipTrafficReachesEveryDirectory)
{
    // Every commit must retire its TID at every directory - after a
    // run, all NSTIDs equal the vendor's issue count.
    System sys(protoConfig(6));
    std::vector<ScriptedSource> srcs(6);
    for (NodeId p = 0; p < 6; ++p) {
        srcs[p].add({TxOp::compute(10 + p),
                     TxOp::store(homedAt(p, 6), p)});
        sys.setSource(p, &srcs[p]);
    }
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    for (NodeId d = 0; d < 6; ++d)
        EXPECT_EQ(sys.directory(d).nstid(), sys.vendor().issued());
}

TEST(Protocol, WriteThroughCommitStillSerializable)
{
    // Ablation mode: data travels with the marks and memory is the
    // owner; results must be identical, with no cache-to-cache
    // forwarding.
    SystemConfig cfg = protoConfig(4);
    cfg.writeThroughCommit = true;
    System sys(cfg);
    const Addr ctr = homedAt(1, 4);
    std::vector<ScriptedSource> srcs(4);
    for (NodeId p = 0; p < 4; ++p) {
        for (int i = 0; i < 10; ++i)
            srcs[p].add({TxOp::load(ctr), TxOp::compute(40),
                         TxOp::storeAdd(ctr, 1)});
        sys.setSource(p, &srcs[p]);
    }
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(sys.memory().read(ctr), 40u);
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
    EXPECT_TRUE(sys.protocolQuiesced());
    // Memory is always current: no owner flushes.
    EXPECT_EQ(sys.network().stats()
                  .classBytes[(int)TrafficClass::Shared],
              0u);
}

TEST(Protocol, CommitTimeIsBoundedForSmallTransactions)
{
    // Commit latency should be on the order of a few network round
    // trips, not proportional to transaction length.
    System sys(protoConfig(4));
    std::vector<ScriptedSource> srcs(4);
    for (NodeId p = 0; p < 4; ++p) {
        for (int i = 0; i < 20; ++i)
            srcs[p].add({TxOp::compute(500),
                         TxOp::store(homedAt(p, 4) + 4 * i, i)});
        sys.setSource(p, &srcs[p]);
    }
    const RunResult res = sys.run();
    ASSERT_TRUE(res.completed);
    for (NodeId p = 0; p < 4; ++p) {
        const auto &s = sys.proc(p).stats();
        EXPECT_LT(s.commitLatency.percentile(90), 500.0)
            << "commit latency too high on proc " << p;
    }
}

} // namespace
} // namespace tcc
