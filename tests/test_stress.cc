/**
 * @file
 * Property-based stress tests: randomized transactional workloads are
 * pushed through the full protocol stack across a parameter sweep
 * (seeds x conflict-detection granularity x network model x processor
 * count x reorder jitter), and three invariants are verified after
 * every run:
 *
 *   1. serializability - every committed transaction's reads match a
 *      serial replay in TID order (SerialChecker);
 *   2. quiescence - every directory retired every issued TID and no
 *      protocol state is left in flight;
 *   3. progress - every generated transaction committed.
 *
 * The parameter sweep runs through SweepRunner: every configuration
 * simulates concurrently on a worker (each System is thread-confined),
 * and the invariants are asserted serially afterwards - gtest
 * assertions are not thread-safe, so no EXPECT runs off the main
 * thread.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/sweep.hh"
#include "core/system.hh"
#include "sim/random.hh"
#include "workload/scripted_source.hh"

namespace tcc {
namespace {

struct StressParam {
    std::uint64_t seed;
    std::uint32_t procs;
    Granularity gran;
    Tick jitter;
    bool ideal;
    bool writeThrough = false;
    std::uint32_t dirCacheEntries = 0;
};

std::string
paramName(const StressParam &p)
{
    std::string s = "seed" + std::to_string(p.seed) + "_p" +
                    std::to_string(p.procs) +
                    (p.gran == Granularity::Word ? "_word" : "_line") +
                    "_j" + std::to_string(p.jitter) +
                    (p.ideal ? "_ideal" : "_mesh");
    if (p.writeThrough)
        s += "_wt";
    if (p.dirCacheEntries)
        s += "_dc" + std::to_string(p.dirCacheEntries);
    return s;
}

/**
 * Build a random conflict-heavy workload: each processor runs
 * transactions mixing private accesses, shared-array accesses, and
 * read-modify-writes on a small hot set.
 */
std::vector<ScriptedSource>
buildWorkload(const StressParam &p, std::uint32_t txns_per_proc)
{
    std::vector<ScriptedSource> srcs(p.procs);
    for (NodeId proc = 0; proc < p.procs; ++proc) {
        Rng rng(p.seed * 1000 + proc);
        for (std::uint32_t t = 0; t < txns_per_proc; ++t) {
            std::vector<TxOp> ops;
            const int n_ops = 2 + static_cast<int>(rng.below(8));
            for (int k = 0; k < n_ops; ++k) {
                const double roll = rng.uniform();
                if (roll < 0.3) {
                    ops.push_back(TxOp::compute(
                        1 + static_cast<std::uint32_t>(
                                rng.below(60))));
                } else if (roll < 0.55) {
                    // Private data.
                    ops.push_back(TxOp::store(
                        0x1000000ull * (proc + 1) +
                            4 * rng.below(64),
                        rng.next()));
                } else if (roll < 0.8) {
                    // Shared array read-modify-write.
                    const Addr a = 0x90000000ull + 4 * rng.below(32);
                    ops.push_back(TxOp::load(a));
                    ops.push_back(TxOp::storeAdd(a, 1));
                } else {
                    // Hot word increment (heavy conflicts).
                    const Addr a = 0xA0000000ull + 4 * rng.below(3);
                    ops.push_back(TxOp::load(a));
                    ops.push_back(TxOp::storeAdd(a, 1));
                }
            }
            srcs[proc].add(std::move(ops),
                           /*barrier_before=*/t != 0 &&
                               rng.chance(0.05));
        }
    }
    return srcs;
}

/** Everything the main thread asserts about one finished run. */
struct StressResult {
    bool completed = false;
    bool allCommitted = false;
    bool checkerOk = false;
    std::string checkerError;
    bool quiesced = false;
    bool memoryOk = false;
    std::string memoryError;
};

StressResult
runStress(const StressParam &p)
{
    SystemConfig cfg;
    cfg.numProcs = p.procs;
    cfg.check.serial = true;
    cfg.check.invariants = true;
    cfg.cache.granularity = p.gran;
    cfg.network.model = p.ideal ? NetworkConfig::Model::Ideal
                                : NetworkConfig::Model::Mesh;
    cfg.network.mesh.reorderJitter = p.jitter;
    cfg.network.mesh.seed = p.seed;
    cfg.writeThroughCommit = p.writeThrough;
    cfg.directory.dirCacheEntries = p.dirCacheEntries;
    System sys(cfg);

    constexpr std::uint32_t kTxns = 25;
    auto srcs = buildWorkload(p, kTxns);
    for (NodeId n = 0; n < p.procs; ++n)
        sys.setSource(n, &srcs[n]);

    const RunResult res = sys.run(1'000'000'000ull);
    StressResult out;
    out.completed = res.completed;
    if (!out.completed)
        return out;

    // Progress: every transaction committed exactly once.
    out.allCommitted = true;
    for (NodeId n = 0; n < p.procs; ++n)
        if (srcs[n].committed() != kTxns)
            out.allCommitted = false;

    // Serializability and online protocol invariants.
    out.checkerOk = res.serial.ok && res.invariants.ok;
    out.checkerError =
        !res.serial.ok ? res.serial.error : res.invariants.error;

    // Quiescence.
    out.quiesced = res.quiesced;

    // Hot counters must equal the number of increments recorded by
    // the replay (conservation is implied by the checker, but verify
    // the simulator's memory too).
    out.memoryOk = true;
    auto final_state = sys.commitLog().replayFinalState();
    for (const auto &[addr, val] : final_state) {
        if (sys.memory().read(addr) != val) {
            out.memoryOk = false;
            std::ostringstream os;
            os << "memory mismatch at " << std::hex << addr;
            out.memoryError = os.str();
            break;
        }
    }
    return out;
}

std::vector<StressParam> makeParams();

TEST(StressSweep, SerializableQuiescentAndLive)
{
    const auto params = makeParams();
    SweepRunner runner; // TCC_JOBS / hardware concurrency
    const auto results = sweepIndex<StressResult>(
        runner, params.size(),
        [&](std::size_t i) { return runStress(params[i]); });

    for (std::size_t i = 0; i < params.size(); ++i) {
        SCOPED_TRACE(paramName(params[i]));
        const auto &r = results[i];
        ASSERT_TRUE(r.completed)
            << "stuck (livelock or lost message)";
        EXPECT_TRUE(r.allCommitted);
        EXPECT_TRUE(r.checkerOk) << r.checkerError;
        EXPECT_TRUE(r.quiesced);
        EXPECT_TRUE(r.memoryOk) << r.memoryError;
    }
}

std::vector<StressParam>
makeParams()
{
    std::vector<StressParam> ps;
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
        for (std::uint32_t procs : {2u, 4u, 8u}) {
            ps.push_back({seed, procs, Granularity::Word, 0, false});
        }
    }
    // Line granularity (false sharing paths).
    for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
        ps.push_back({seed, 4, Granularity::Line, 0, false});
        ps.push_back({seed, 8, Granularity::Line, 0, false});
    }
    // Unordered network: reorder jitter stresses the race-elimination
    // machinery (poisoned fills, stale marks, TID-tagged write-backs).
    for (std::uint64_t seed : {21ull, 22ull, 23ull, 24ull}) {
        ps.push_back({seed, 4, Granularity::Word, 30, false});
        ps.push_back({seed, 8, Granularity::Word, 60, false});
    }
    // Ideal network (different timing interleavings).
    for (std::uint64_t seed : {31ull, 32ull}) {
        ps.push_back({seed, 8, Granularity::Word, 0, true});
    }
    // Line granularity + jitter combined.
    for (std::uint64_t seed : {41ull, 42ull}) {
        ps.push_back({seed, 8, Granularity::Line, 40, false});
    }
    // Write-through commit ablation under contention and jitter.
    for (std::uint64_t seed : {51ull, 52ull}) {
        StressParam p{seed, 8, Granularity::Word, 0, false};
        p.writeThrough = true;
        ps.push_back(p);
        StressParam q{seed, 4, Granularity::Word, 30, false};
        q.writeThrough = true;
        ps.push_back(q);
    }
    // Tiny directory cache (every message can miss).
    for (std::uint64_t seed : {61ull, 62ull}) {
        StressParam p{seed, 8, Granularity::Word, 0, false};
        p.dirCacheEntries = 16;
        ps.push_back(p);
    }
    // A larger machine (wider mesh, longer commit fan-out).
    ps.push_back({71, 16, Granularity::Word, 0, false});
    ps.push_back({72, 32, Granularity::Word, 0, false});
    return ps;
}

// ---------------------------------------------------------------------
// Tiny-cache stress: overflow handling under pressure.
// ---------------------------------------------------------------------

class TinyCacheStress : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TinyCacheStress, OverflowViolatesButStaysCorrect)
{
    SystemConfig cfg;
    cfg.numProcs = 4;
    cfg.check.serial = true;
    cfg.check.invariants = true;
    cfg.cache.l1Bytes = 128;
    cfg.cache.l1Assoc = 2;
    cfg.cache.l2Bytes = 1024; // 32 lines
    cfg.cache.l2Assoc = 4;
    System sys(cfg);

    // Transactions with working sets comparable to the whole cache.
    std::vector<ScriptedSource> srcs(4);
    Rng rng(GetParam());
    for (NodeId proc = 0; proc < 4; ++proc) {
        for (int t = 0; t < 8; ++t) {
            std::vector<TxOp> ops;
            for (int k = 0; k < 20; ++k) {
                const Addr a =
                    0x90000000ull + 0x20 * rng.below(64) + 4 * proc;
                ops.push_back(TxOp::load(a));
                ops.push_back(TxOp::storeAdd(a, 1));
            }
            srcs[proc].add(std::move(ops));
        }
        sys.setSource(proc, &srcs[proc]);
    }

    const RunResult res = sys.run(2'000'000'000ull);
    ASSERT_TRUE(res.completed);
    EXPECT_TRUE(res.serial.ok) << res.serial.error;
    EXPECT_TRUE(res.invariants.ok) << res.invariants.error;
    EXPECT_TRUE(res.quiesced);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TinyCacheStress,
                         ::testing::Values(100, 101, 102));

} // namespace
} // namespace tcc
